// Transparency demo: unbounded, short-lived threads over a fixed slot set.
//
// The scenario §1 and §2.4 of the paper motivate: a server that spawns a
// thread (or fiber) per client. Registered-thread schemes (EBR/HP/HE/IBR)
// need a slot per concurrent thread and a (blocking) unregister step;
// Hyaline supports any number of threads over k fixed slots, and a thread
// can exit immediately after leave — nodes it retired are finalized by
// whoever holds the last reference.
//
// This example runs 16 "waves" of 32 worker threads each (512 thread
// lifetimes total) over an 8-slot Hyaline domain and shows that memory is
// fully reclaimed with no per-thread bookkeeping.

#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "ds/natarajan_tree.hpp"
#include "smr/hyaline.hpp"

int main() {
  hyaline::domain dom(hyaline::config{.slots = 8});
  hyaline::ds::natarajan_tree<hyaline::domain> tree(dom);

  constexpr unsigned kWaves = 16;
  constexpr unsigned kThreadsPerWave = 32;
  constexpr unsigned kOpsPerThread = 2000;

  for (unsigned wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreadsPerWave; ++t) {
      ts.emplace_back([&, wave, t] {
        hyaline::xoshiro256 rng(wave * 1000 + t);
        for (unsigned i = 0; i < kOpsPerThread; ++i) {
          // Transparent enter: no thread id, no registration — the guard
          // picks a slot from a per-thread hint.
          hyaline::domain::guard g(dom);
          const std::uint64_t key = rng.below(512);
          if (rng.below(2) == 0) {
            tree.insert(g, key, key);
          } else {
            tree.remove(g, key);
          }
        }
        dom.flush();
        // Thread exits here. Unlike EBR/HP, nothing blocks: retired
        // batches this thread inserted are owned by the remaining
        // threads' reference counts.
      });
    }
    for (auto& th : ts) th.join();
    std::printf("wave %2u done: live=%5zu unreclaimed=%llu\n", wave,
                tree.unsafe_size(),
                static_cast<unsigned long long>(dom.counters().unreclaimed()));
  }

  dom.drain();
  const auto& c = dom.counters();
  std::printf("total thread lifetimes: %u, slots: %zu\n",
              kWaves * kThreadsPerWave, dom.slot_count());
  std::printf("allocated=%llu freed-or-live: retired=%llu freed=%llu "
              "unreclaimed=%llu\n",
              static_cast<unsigned long long>(c.allocated.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(c.retired.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(c.freed.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(c.unreclaimed()));
  return 0;
}
