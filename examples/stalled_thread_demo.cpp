// Robustness demo: what one stalled thread does to each scheme.
//
// A thread enters, reads one node, and never leaves (think: preempted
// forever, or stuck in a signal handler). Under EBR the global epoch can
// no longer advance, so *all* reclamation stops and memory grows without
// bound. Under Hyaline-S the stalled thread only poisons its own slot:
// retiring threads skip slots with stale access eras, and enter() hops
// past slots whose Ack indicates a stalled occupant, so reclamation
// continues (§4.2 / Figure 10a).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "ds/michael_hashmap.hpp"
#include "smr/ebr.hpp"
#include "smr/hyaline.hpp"

namespace {

template <class D, class MakeDom>
void demo(const char* name, MakeDom make_dom) {
  auto dom = make_dom();
  hyaline::ds::michael_hashmap<D> map(*dom, 4096);

  std::atomic<bool> stop{false};
  std::atomic<bool> stalled_ready{false};

  // Prefill.
  {
    typename D::guard g(*dom);
    for (std::uint64_t k = 0; k < 4096; ++k) map.insert(g, k, k);
  }

  // The stalled thread: enters, touches a node, then blocks inside the
  // critical section until the demo ends.
  std::thread stalled([&] {
    typename D::guard g(*dom);
    map.contains(g, 7);
    stalled_ready.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  while (!stalled_ready.load(std::memory_order_acquire)) {
  }

  // Two active workers churn inserts/removes for one second.
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < 2; ++t) {
    workers.emplace_back([&, t] {
      hyaline::xoshiro256 rng(t + 42);
      while (!stop.load(std::memory_order_acquire)) {
        typename D::guard g(*dom);
        const std::uint64_t k = rng.below(4096);
        if (rng.below(2) == 0) {
          map.insert(g, k, k);
        } else {
          map.remove(g, k);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(1));
  const auto unreclaimed = dom->counters().unreclaimed();
  stop.store(true, std::memory_order_release);
  stalled.join();
  for (auto& th : workers) th.join();
  dom->drain();

  std::printf("%-10s unreclaimed after 1s with a stalled thread: %llu\n",
              name, static_cast<unsigned long long>(unreclaimed));
}

}  // namespace

int main() {
  std::puts("one stalled reader, two writers, 1 second of churn:");
  demo<hyaline::smr::ebr_domain>("Epoch", [] {
    return std::make_unique<hyaline::smr::ebr_domain>(8u);
  });
  demo<hyaline::domain_s>("Hyaline-S", [] {
    return std::make_unique<hyaline::domain_s>(
        hyaline::config{.slots = 8, .max_slots = 64, .ack_threshold = 512});
  });
  std::puts("(Epoch grows without bound; Hyaline-S stays flat.)");
  return 0;
}
