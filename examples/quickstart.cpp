// Quickstart: a concurrent hash map reclaimed by Hyaline.
//
// Shows the whole public API (v2) surface in one place:
//   1. create a reclamation domain (hyaline::domain),
//   2. build a data structure over it,
//   3. wrap every operation in a guard (enter/leave) — guards take only
//      the domain; thread identity is leased transparently,
//   4. let the structure retire unlinked nodes through the guard (typed
//      retire captures each node type's deleter, so any number of
//      structures can share one domain),
//   5. flush + drain at shutdown.
//
// Build: cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <thread>
#include <vector>

#include "ds/michael_hashmap.hpp"
#include "smr/hyaline.hpp"

int main() {
  // A domain with 8 slots; any number of threads may share them. Threads
  // never register or unregister (the paper's transparency property).
  hyaline::domain dom(hyaline::config{.slots = 8});
  hyaline::ds::michael_hashmap<hyaline::domain> map(dom, /*buckets=*/1024);

  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kKeys = 10000;

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Insert a disjoint slice of keys, read some back, delete half.
      for (std::uint64_t k = t; k < kKeys; k += kThreads) {
        hyaline::domain::guard g(dom);  // enter
        map.insert(g, k, k * k);
      }  // leave (guard destructor)
      for (std::uint64_t k = t; k < kKeys; k += kThreads) {
        hyaline::domain::guard g(dom);
        std::uint64_t v = 0;
        if (!map.get(g, k, v) || v != k * k) {
          std::fprintf(stderr, "lost key %llu!\n",
                       static_cast<unsigned long long>(k));
        }
      }
      for (std::uint64_t k = t; k < kKeys; k += 2 * kThreads) {
        hyaline::domain::guard g(dom);
        map.remove(g, k);  // unlinked nodes are retired, then freed by
                           // whichever thread drops the last reference
      }
      dom.flush();  // finalize this thread's partial batch (dummy nodes);
                    // after this the thread is fully "off the hook"
    });
  }
  for (auto& th : threads) th.join();

  std::printf("elements left: %zu\n", map.unsafe_size());
  const auto& c = dom.counters();
  std::printf("allocated=%llu retired=%llu freed=%llu unreclaimed=%llu\n",
              static_cast<unsigned long long>(c.allocated.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(c.retired.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(c.freed.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(c.unreclaimed()));
  dom.drain();
  std::printf("after drain: unreclaimed=%llu\n",
              static_cast<unsigned long long>(c.unreclaimed()));
  return 0;
}
